// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6). Each BenchmarkFig* drives the corresponding experiment runner in
// quick mode (the full sweeps are produced by cmd/rldbench and recorded in
// EXPERIMENTS.md); the Benchmark*Core entries are micro-benchmarks of the
// hot algorithms themselves.
//
// Run with:
//
//	go test -bench=. -benchmem
package rld

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// benchExperiment drives one registered experiment in quick mode.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, ok := RunExperiment(id, true)
		if !ok || len(tables) == 0 {
			b.Fatalf("experiment %s failed", id)
		}
	}
}

// Table 2 — system parameters and data-distribution statistics.
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// Figure 10 — optimizer calls vs uncertainty level (ES/RS/ERP).
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// Figure 11 — space coverage vs optimizer-call budget.
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// Figure 12 — optimizer calls vs space dimensionality.
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }

// Figure 13 — physical-plan compile time vs machines.
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }

// Figure 14 — physical-plan space coverage vs machines.
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14") }

// Figure 15a — average tuple processing time vs rate fluctuation ratio.
func BenchmarkFig15a(b *testing.B) { benchExperiment(b, "fig15a") }

// Figure 15b — cumulative tuples produced under stepped rates.
func BenchmarkFig15b(b *testing.B) { benchExperiment(b, "fig15b") }

// Figure 16a — average tuple processing time vs number of nodes.
func BenchmarkFig16a(b *testing.B) { benchExperiment(b, "fig16a") }

// Figure 16b — average tuple processing time vs fluctuation period.
func BenchmarkFig16b(b *testing.B) { benchExperiment(b, "fig16b") }

// §6.5 — runtime overhead comparison.
func BenchmarkOverhead(b *testing.B) { benchExperiment(b, "overhead") }

// Ablations (DESIGN.md §6).
func BenchmarkAblationERPvsWRP(b *testing.B) { benchExperiment(b, "ablation-erp") }
func BenchmarkAblationBound(b *testing.B)    { benchExperiment(b, "ablation-bound") }
func BenchmarkAblationBatchSize(b *testing.B) {
	benchExperiment(b, "ablation-batch")
}

// --- Micro-benchmarks of the core algorithms ---

func benchDeployment(b *testing.B, eps float64) *Deployment {
	b.Helper()
	q := NewNWayJoin("Q1", 5, 2)
	dims := []Dim{
		SelDim(0, q.Ops[0].Sel, 3),
		SelDim(3, q.Ops[3].Sel, 3),
	}
	cfg := DefaultConfig()
	cfg.Robust.Epsilon = eps
	dep, err := Optimize(q, dims, NewCluster(3, 80), cfg)
	if err != nil {
		b.Fatal(err)
	}
	return dep
}

// BenchmarkOptimizeCore measures the full two-step RLD optimization
// (ERP + OptPrune) for Q1 on a 16×16 space.
func BenchmarkOptimizeCore(b *testing.B) {
	q := NewNWayJoin("Q1", 5, 2)
	dims := []Dim{
		SelDim(0, q.Ops[0].Sel, 3),
		SelDim(3, q.Ops[3].Sel, 3),
	}
	cl := NewCluster(3, 80)
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(q, dims, cl, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClassifyCore measures one online classification — the per-batch
// runtime cost RLD pays instead of migration.
func BenchmarkClassifyCore(b *testing.B) {
	dep := benchDeployment(b, 0.05)
	snap := Snapshot{Sels: []float64{0.3, 0.35, 0.4, 0.45, 0.5}, Rates: map[string]float64{}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p, _ := dep.Classify(snap); p == nil {
			b.Fatal("classification failed")
		}
	}
}

// BenchmarkBestPlanCore measures one black-box optimizer call (rank-based
// exact ordering) — the unit of Figures 10-12.
func BenchmarkBestPlanCore(b *testing.B) {
	dep := benchDeployment(b, 0.2)
	pnt := dep.Space.At(dep.Space.Center())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p, _ := BestPlanAt(dep, pnt); p == nil {
			b.Fatal("no plan")
		}
	}
}

// BenchmarkSimMinuteCore measures one simulated minute of the DSPS under
// the RLD policy (3 streams, batch 20).
func BenchmarkSimMinuteCore(b *testing.B) {
	dep := benchDeployment(b, 0.2)
	sc := &Scenario{
		Query:       dep.Query,
		Rates:       map[string]Profile{},
		Sels:        make([]Profile, len(dep.Query.Ops)),
		Cluster:     dep.Cluster,
		Horizon:     60,
		BatchSize:   20,
		SampleEvery: 5,
		TickEvery:   5,
	}
	for _, s := range dep.Query.Streams {
		sc.Rates[s] = ConstProfile(dep.Query.Rates[s])
	}
	for i := range sc.Sels {
		sc.Sels[i] = ConstProfile(dep.Query.Ops[i].Sel)
	}
	pol := dep.NewPolicy(20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scCopy := *sc
		if _, err := Run(&scCopy, pol); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineIngestCore measures live-engine batch ingestion and full
// pipeline execution (2-stream join, 50-tuple batches).
func BenchmarkEngineIngestCore(b *testing.B) {
	q := NewNWayJoin("E", 2, 5)
	e, err := NewStaticEngine(q, []int{0, 1}, 2, Plan{0, 1}, DefaultEngineConfig())
	if err != nil {
		b.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	// Batches come from the pool and are refilled through the columnar
	// AppendRow path — the zero-allocation producer idiom.
	mkBatch := func(i int) *Batch {
		batch := AcquireBatch(q.Streams[i%2], 1)
		for j := 0; j < 50; j++ {
			row := batch.AppendRow(uint64(i*50+j), Time(float64(i)*0.1), int64(j%97), Time(float64(i)*0.1))
			row[0] = float64(j)
		}
		return batch
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := mkBatch(i)
		if err := e.Ingest(batch); err != nil {
			b.Fatal(err)
		}
		batch.Release()
	}
	b.StopTimer()
	e.Drain()
}

// benchPipelineIngest drives b.N 100-tuple batches through one live
// Pipeline from the given number of concurrent producers, under the
// deployment's own RLD policy (per-batch classification included). The
// workload is admission-heavy — every batch inserts its tuples into the
// sharded join window and the downstream pipeline sinks early — so the
// measured quantity is the ingest hot path itself.
func benchPipelineIngest(b *testing.B, producers int) {
	dep := benchDeployment(b, 0.2)
	ctx := context.Background()
	pipe, err := Open(ctx, dep, nil, WithShards(64))
	if err != nil {
		b.Fatal(err)
	}
	const batchSize = 100
	batches := make([]*Batch, producers)
	for p := range batches {
		batch := &Batch{Stream: "S2"}
		for j := 0; j < batchSize; j++ {
			batch.Append(&Tuple{
				Stream: batch.Stream,
				Seq:    uint64(p*batchSize + j),
				Ts:     1, // constant virtual time: no tick edges, pure fast-path admission
				Key:    int64(p*batchSize+j) % 1021,
				Vals:   []float64{float64(j)},
			})
		}
		batches[p] = batch
	}
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		cnt := b.N / producers
		if p < b.N%producers {
			cnt++
		}
		wg.Add(1)
		go func(p, cnt int) {
			defer wg.Done()
			for i := 0; i < cnt; i++ {
				if err := pipe.Ingest(ctx, batches[p]); err != nil {
					b.Error(err)
					return
				}
			}
		}(p, cnt)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N*batchSize)/b.Elapsed().Seconds(), "tuples/s")
	if _, err := pipe.Close(ctx); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPipelineIngestParallel measures multi-producer admission
// scaling on one Pipeline — the acceptance benchmark for the concurrent
// admission path (the old design serialized every producer through one
// session mutex, capping producers=4 at ~1× producers=1; on a multi-core
// runner it should now exceed 2×). Run with:
//
//	go test -bench PipelineIngestParallel -benchtime 2s
func BenchmarkPipelineIngestParallel(b *testing.B) {
	for _, producers := range []int{1, 4} {
		b.Run(fmt.Sprintf("producers=%d", producers), func(b *testing.B) {
			benchPipelineIngest(b, producers)
		})
	}
}

// BenchmarkERPByUncertainty reports ERP optimization cost as the declared
// uncertainty grows (the compile-time scaling of Figure 10).
func BenchmarkERPByUncertainty(b *testing.B) {
	for _, u := range []int{1, 3, 5} {
		b.Run(fmt.Sprintf("U=%d", u), func(b *testing.B) {
			q := NewNWayJoin("Q1", 5, 2)
			dims := []Dim{
				SelDim(0, q.Ops[0].Sel, u),
				SelDim(3, q.Ops[3].Sel, u),
			}
			cl := NewCluster(3, 80)
			cfg := DefaultConfig()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Optimize(q, dims, cl, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
